// Command varmon demonstrates the library as a real distributed monitoring
// service: a coordinator and k sites track a simulated update stream and
// periodically print the coordinator's estimate against the true value.
//
// By default the run is live TCP on loopback with the deterministic
// variability tracker of §3.3. With -net the run moves to the
// fault-injecting asynchronous simulator (dist.AsyncSim) under the given
// network model, adding staleness and loss counters to the report:
//
//	varmon -net latency=8,jitter=2,drop=0.01,retrans=3
//
// With -queries the run becomes a multi-tenant monitor (internal/query):
// Q concurrent tracking queries — mixed algorithms, ε's, item filters —
// multiplexed over the one shared runtime, with per-query cost and error
// reporting. Queries with an at=T option attach mid-stream, bootstrapping
// the history they missed through the resync machinery:
//
//	varmon -stream zipf -queries 'det,eps=0.05;freq,eps=0.1;det,eps=0.1,filter=even;rand,eps=0.1,at=50000'
//
// -http ADDR serves the live admin surface on any runtime: GET /status
// (JSON estimates and counters), /metrics (Prometheus text exposition,
// aggregate plus per-query families), /events?n=K (the newest K traced
// protocol events as JSONL), /healthz (503 while a site or the
// coordinator is down), and /debug/pprof. ":0" binds an ephemeral port
// and prints the one chosen. -events-out FILE dumps the retained event
// trace as JSONL at exit; either flag enables tracing, and runs with
// neither install no sinks and pay nothing.
//
// Workloads can be recorded while running (-record FILE, a streaming tee —
// the run and the file see the identical updates) and replayed (-replay
// FILE), including replaying with -record to re-encode an old trace.
//
// On live TCP, -hb INTERVAL arms failure detection: sites beacon
// heartbeats and the coordinator declares a slot dead after -hb-miss
// consecutive missed periods instead of aborting on its read error. Site
// dials retry with exponential backoff up to -dial-timeout, so sites can
// start before the coordinator listens. -kill STEP:SITE is the
// crash-fault smoke: at update STEP the given site's process is killed
// mid-stream; the run waits for the detector's verdict, keeps streaming
// degraded (the victim's updates buffer locally), then dials a warm
// replacement restored from a pre-kill snapshot into the dead slot,
// replays the buffered updates, and exits nonzero unless the final
// estimate is back inside ε:
//
//	varmon -n 20000 -hb 10ms -kill 8000:1
//
// -kill-coord STEP is the coordinator-side mirror: at update STEP the
// coordinator process is killed. Every site's updates buffer locally while
// the slot is vacant, then a replacement coordinator comes up on a new
// port (with -standby, warm: restored from a pre-kill snapshot; without,
// cold: rebuilt purely from what the sites re-report through the
// KindCoordTakeover handshake), all sites re-dial it, the buffered
// backlogs replay, and the run exits nonzero unless exactly one
// coordinator takeover happened and the final estimate is inside ε:
//
//	varmon -n 20000 -hb 10ms -kill-coord 8000 -standby
//
// -snapshot-dir DIR persists the coordinator's self-verifying snapshot to
// DIR at every progress interval (and at the pre-kill checkpoint with
// -kill-coord); -restore DIR boots the coordinator from the newest
// snapshot in DIR that still passes its integrity hash — damaged files
// are skipped loudly, never silently restored. With -restore the
// coordinator resumes the snapshot's accumulated history, so the printed
// exact value only matches when the run continues the recorded stream.
//
// Usage:
//
//	varmon [-k 4] [-eps 0.1] [-n 100000] [-stream randwalk|biased|monotone|sawtooth|zipf] [-seed 1]
//	       [-queries SPECS] [-http ADDR] [-events-out FILE] [-record FILE] [-replay FILE] [-net MODEL]
//	       [-dial-timeout 2s] [-hb 0] [-hb-miss 3] [-kill STEP:SITE] [-takeover-after 0]
//	       [-kill-coord STEP] [-standby] [-snapshot-dir DIR] [-restore DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/track"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "varmon: "+format+"\n", args...)
	os.Exit(1)
}

// streamClasses is the CLI's workload menu, in display order. zipf is the
// item workload of appendix H (Zipf-distributed inserts with uniform
// deletions), which gives frequency queries something to track.
var streamClasses = []struct {
	name string
	make func(n int64, seed uint64) stream.Stream
}{
	{"randwalk", func(n int64, seed uint64) stream.Stream { return stream.RandomWalk(n, seed) }},
	{"biased", func(n int64, seed uint64) stream.Stream { return stream.BiasedWalk(n, 0.2, seed) }},
	{"monotone", func(n int64, seed uint64) stream.Stream { return stream.Monotone(n) }},
	{"sawtooth", func(n int64, seed uint64) stream.Stream { return stream.Sawtooth(n, 64, 32) }},
	{"zipf", func(n int64, seed uint64) stream.Stream { return stream.NewItemGen(n, 4096, 1.1, 0.2, seed) }},
}

// makeStream resolves a -stream class name, or exits with a friendly error
// naming the valid classes.
func makeStream(class string, n int64, seed uint64) stream.Stream {
	names := make([]string, len(streamClasses))
	for i, c := range streamClasses {
		names[i] = c.name
		if c.name == class {
			return c.make(n, seed)
		}
	}
	fmt.Fprintf(os.Stderr, "varmon: unknown stream class %q (valid classes: %s)\n",
		class, strings.Join(names, "|"))
	os.Exit(2)
	return nil
}

// tee passes an assigned stream through while writing every update to a
// trace — recording is a side effect of the run consuming the stream, so
// the file can never diverge from the workload the run actually saw.
type tee struct {
	inner stream.Stream
	tw    *stream.TraceWriter
}

func (t *tee) Next() (stream.Update, bool) {
	u, ok := t.inner.Next()
	if ok {
		if err := t.tw.Write(u); err != nil {
			fatalf("writing trace: %v", err)
		}
	}
	return u, ok
}

func main() {
	var (
		k         = flag.Int("k", 4, "number of sites")
		eps       = flag.Float64("eps", 0.1, "relative error parameter (single-query mode)")
		n         = flag.Int64("n", 100_000, "stream length")
		seed      = flag.Uint64("seed", 1, "stream seed")
		sclass    = flag.String("stream", "randwalk", "stream class: randwalk|biased|monotone|sawtooth|zipf")
		refresh   = flag.Int64("progress", 10, "progress lines to print")
		record    = flag.String("record", "", "tee the workload into this trace file while running")
		replay    = flag.String("replay", "", "drive the run from a recorded trace file instead of a generator")
		netFlag   = flag.String("net", "", "run on the async fault simulator under this model (e.g. latency=8,jitter=2,drop=0.01,retrans=3) instead of live TCP")
		queries   = flag.String("queries", "", "multi-query mode: ';'-separated query specs, e.g. 'det,eps=0.1;freq,eps=0.2,filter=even;rand,eps=0.05,at=50000'")
		httpAddr  = flag.String("http", "", "serve the live admin surface (/status /metrics /events /healthz /debug/pprof) on this address — works with every runtime; \":0\" picks a port and prints it")
		eventsOut = flag.String("events-out", "", "dump the protocol event trace as JSONL to this file at exit")
		dialTO    = flag.Duration("dial-timeout", 2*time.Second, "TCP site dial retry budget (exponential backoff with jitter)")
		hb        = flag.Duration("hb", 0, "TCP failure detection: heartbeat interval (0 = off)")
		hbMiss    = flag.Int("hb-miss", 3, "consecutive missed heartbeat periods before a slot is declared dead")
		kill      = flag.String("kill", "", "crash-fault smoke (TCP single-query mode): kill site at 'STEP:SITE', e.g. 8000:1")
		tkAfter   = flag.Duration("takeover-after", 0, "with -kill/-kill-coord: extra degraded time before the replacement comes up")
		killCo    = flag.Int64("kill-coord", 0, "coordinator crash smoke (TCP single-query mode): kill the coordinator at this step and fail over")
		standby   = flag.Bool("standby", false, "with -kill-coord: warm standby — restore the replacement coordinator from the pre-kill snapshot instead of booting cold")
		snapDir   = flag.String("snapshot-dir", "", "TCP single-query mode: persist coordinator snapshots into this directory at every progress interval")
		restDir   = flag.String("restore", "", "TCP single-query mode: boot the coordinator from the newest intact snapshot in this directory")
	)
	flag.Parse()

	gen := makeStream(*sclass, *n, *seed)

	// The driven stream: replayed traces already carry site assignments
	// (validated against -k below); generated workloads get round-robin.
	var st stream.Stream
	recordK := *k
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		tr, err := stream.NewTraceReader(f)
		if err != nil {
			fatalf("%v", err)
		}
		if tr.K() > *k {
			fatalf("%s was recorded for %d sites; rerun with -k >= %d", *replay, tr.K(), tr.K())
		}
		if tr.K() == 0 {
			fmt.Fprintf(os.Stderr, "varmon: %s predates the site-count header; site ids are validated per update\n", *replay)
		} else {
			// A re-recorded copy stays valid for the k it was assigned
			// over, not the (possibly larger) -k of this run.
			recordK = tr.K()
		}
		st = tr
	} else {
		st = stream.NewAssign(gen, stream.NewRoundRobin(*k))
	}

	// Recording is a streaming tee around the (already assigned) run
	// stream — never a re-assignment, never a Collect.
	var recFile *os.File
	var tw *stream.TraceWriter
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatalf("%v", err)
		}
		recFile = f
		tw, err = stream.NewTraceWriter(f, recordK)
		if err != nil {
			fatalf("%v", err)
		}
		st = &tee{inner: st, tw: tw}
	}

	every := *n / *refresh
	if every < 1 {
		every = 1
	}

	var model *dist.NetModel
	if *netFlag != "" {
		m, err := dist.ParseNetModel(*netFlag)
		if err != nil {
			fatalf("%v", err)
		}
		model = &m
	}

	adm := newAdmin(obsCfg{httpAddr: *httpAddr, eventsOut: *eventsOut})
	opts := tcpOpts{dialTimeout: *dialTO, hb: *hb, hbMiss: *hbMiss}
	if *kill != "" && (*queries != "" || model != nil) {
		fatalf("-kill needs the single-query live TCP runtime (drop -queries and -net)")
	}
	if *killCo > 0 && (*queries != "" || model != nil) {
		fatalf("-kill-coord needs the single-query live TCP runtime (drop -queries and -net)")
	}
	if *kill != "" && *killCo > 0 {
		fatalf("-kill and -kill-coord are one fault apiece; pick one")
	}
	if *standby && *killCo == 0 {
		fatalf("-standby only means something with -kill-coord")
	}
	if (*snapDir != "" || *restDir != "") && (*queries != "" || model != nil || *kill != "") {
		fatalf("-snapshot-dir/-restore need the single-query live TCP runtime (drop -queries, -net and -kill)")
	}
	switch {
	case *queries != "":
		specs, err := query.ParseSpecs(*queries)
		if err != nil {
			fatalf("%v", err)
		}
		if model != nil {
			runQueriesAsync(st, *k, specs, every, *model, *seed, adm)
		} else {
			runQueriesTCP(st, *k, specs, every, opts, adm)
		}
	case model != nil:
		runAsync(st, *k, *eps, every, *model, *seed, adm)
	case *kill != "":
		step, site := parseKill(*kill, *k)
		runTCPKill(st, *k, *eps, every, opts, step, site, *tkAfter, adm)
	case *killCo > 0:
		runTCPKillCoord(st, *k, *eps, every, opts, *killCo, *standby, *snapDir, *restDir, *tkAfter, adm)
	default:
		runTCP(st, *k, *eps, every, opts, *snapDir, *restDir, adm)
	}

	if tw != nil {
		if err := tw.Flush(); err != nil {
			fatalf("flushing trace: %v", err)
		}
		if err := recFile.Close(); err != nil {
			fatalf("closing trace: %v", err)
		}
		fmt.Printf("recorded %d updates to %s\n", tw.Count(), *record)
	}
}

// checkSite guards per-site indexing against out-of-range ids (a format-1
// trace replayed with too small a -k, or a corrupt record).
func checkSite(u stream.Update, k int) {
	if u.Site < 0 || u.Site >= k {
		fatalf("update %d is assigned to site %d, outside [0, %d); was the trace recorded with a larger -k?",
			u.T, u.Site, k)
	}
}

// tcpOpts carries the live-TCP runtime knobs from the flag set.
type tcpOpts struct {
	dialTimeout time.Duration
	hb          time.Duration // 0: failure detection off
	hbMiss      int
}

// arm wires failure detection onto a freshly built coordinator+site set.
func (o tcpOpts) arm(coord *dist.Coordinator, sites []*dist.NetSite) {
	if o.hb <= 0 {
		return
	}
	coord.SetFailureDetection(o.hb, o.hbMiss)
	for _, s := range sites {
		s.StartHeartbeats(o.hb)
	}
}

// parseKill resolves a -kill STEP:SITE argument.
func parseKill(spec string, k int) (int64, int) {
	var step int64
	var site int
	if _, err := fmt.Sscanf(spec, "%d:%d", &step, &site); err != nil {
		fatalf("-kill wants STEP:SITE, got %q", spec)
	}
	if step < 1 || site < 0 || site >= k {
		fatalf("-kill %q: need STEP >= 1 and SITE in [0, %d)", spec, k)
	}
	return step, site
}

func runTCP(st stream.Stream, k int, eps float64, every int64, opts tcpOpts, snapDir, restoreDir string, adm *admin) {
	coordAlgo, siteAlgos := track.NewDeterministic(k, eps)
	var coord *dist.Coordinator
	var err error
	if restoreDir != "" {
		// Boot from the newest intact on-disk snapshot. The restored
		// coordinator is a new incarnation of an old deployment, so it
		// listens as a standby: epoch 1, announcing the takeover to every
		// site that dials so their books fold through the handshake.
		restored, step, skipped, rerr := restoreLatest(restoreDir, func() any {
			a, _ := track.NewDeterministic(k, eps)
			return a
		})
		for _, s := range skipped {
			fmt.Fprintf(os.Stderr, "varmon: skipping damaged snapshot %s\n", s)
		}
		if rerr != nil {
			fatalf("%v", rerr)
		}
		coordAlgo = restored.(dist.CoordAlgo)
		coord, err = dist.ListenCoordinatorStandby("127.0.0.1:0", k, coordAlgo, 1)
		if err == nil {
			fmt.Printf("coordinator restored from the step-%d snapshot in %s (f̂ resumes at %d)\n",
				step, restoreDir, coordAlgo.Estimate())
		}
	} else {
		coord, err = dist.ListenCoordinator("127.0.0.1:0", k, coordAlgo)
	}
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s; %d sites connecting\n", coord.Addr(), k)

	sites := dialSites(coord.Addr(), k, siteAlgos, opts.dialTimeout)
	defer closeSites(sites)
	opts.arm(coord, sites)
	coord.SetEventSink(adm.sink())
	adm.serve(&obs.Metrics{
		Stats:  coord.Stats,
		Health: func() obs.Health { return tcpHealth(coord, k) },
	}, func() any {
		return singleStatus{Estimate: coord.Estimate(), Stats: coord.Stats()}
	})
	defer adm.finish()

	var f, steps int64
	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		f += u.Delta
		steps++
		sites[u.Site].Update(u)
		if u.T%every == 0 {
			// Flush so the printed estimate reflects all sent messages.
			barrierAll(sites, "barrier")
			if snapDir != "" {
				writeSnapshot(coord, coordAlgo, snapDir, u.T)
			}
			est := coord.Estimate()
			fmt.Printf("t=%-10d f=%-10d f̂=%-10d rel.err=%-8.5f msgs=%d\n",
				u.T, f, est, relErr(f, est), coord.Stats().Total())
		}
	}

	barrierAll(sites, "final barrier")
	stats := coord.Stats()
	fmt.Printf("\nfinal: f=%d f̂=%d | messages=%d (%.4f/update) wire bytes=%d\n",
		f, coord.Estimate(), stats.Total(),
		perStep(stats.Total(), steps), stats.Bytes)
	if err := coord.Err(); err != nil {
		fatalf("transport error: %v", err)
	}
}

// runTCPKill is the crash-fault smoke: a real mid-stream process death on
// live TCP, detector verdict, degraded streaming with the victim's updates
// buffered locally, then a warm takeover restored from a pre-kill
// snapshot. Exits nonzero if any leg fails or the final estimate misses ε.
func runTCPKill(st stream.Stream, k int, eps float64, every int64, opts tcpOpts,
	killStep int64, victim int, tkAfter time.Duration, adm *admin) {
	if opts.hb <= 0 {
		opts.hb = 25 * time.Millisecond // the smoke is pointless without a detector
	}
	coordAlgo, siteAlgos := track.NewDeterministic(k, eps)
	coord, err := dist.ListenCoordinator("127.0.0.1:0", k, coordAlgo)
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s; %d sites connecting; killing site %d at step %d\n",
		coord.Addr(), k, victim, killStep)

	sites := dialSites(coord.Addr(), k, siteAlgos, opts.dialTimeout)
	defer closeSites(sites)
	opts.arm(coord, sites)
	coord.SetEventSink(adm.sink())
	// Health rides the detector's verdict (thread-safe on the coordinator),
	// not the driver loop's local phase flags.
	adm.serve(&obs.Metrics{
		Stats:  coord.Stats,
		Health: func() obs.Health { return tcpHealth(coord, k) },
	}, func() any {
		return singleStatus{Estimate: coord.Estimate(), Stats: coord.Stats()}
	})
	defer adm.finish()

	var f, steps int64
	var snap []byte
	var backlog []stream.Update
	var verdictAt, killedAt time.Time
	killed, deadSeen, tookOver := false, false, false
	// A heartbeat already in flight when the victim dies can briefly
	// rescind a dead verdict just after we act on it (the detector
	// re-declares once the stale beacon drains, but by then the
	// replacement has registered against a live-looking slot and the
	// takeover hook never fires). Trust a verdict only once the drain
	// window after the kill has passed and the verdict still stands.
	verdictStands := func() bool {
		return time.Since(killedAt) >= 2*opts.hb && coord.SiteDead(victim)
	}
	takeover := func() {
		_, fresh := track.NewDeterministic(k, eps)
		if err := track.RestoreSite(fresh[victim], snap); err != nil {
			fatalf("restore: %v", err)
		}
		repl, err := dist.DialNetSiteRetry(coord.Addr(), victim, fresh[victim], opts.dialTimeout)
		if err != nil {
			fatalf("takeover dial: %v", err)
		}
		repl.StartHeartbeats(opts.hb)
		repl.Inject(func(out dist.Outbox) {
			fresh[victim].(dist.SiteTakeover).OnTakeover(out)
		})
		for _, u := range backlog {
			repl.Update(u)
		}
		sites[victim] = repl
		tookOver = true
		fmt.Printf("t=%-10d warm takeover: slot %d re-dialed, snapshot restored, %d buffered updates replayed\n",
			steps, victim, len(backlog))
	}
	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		f += u.Delta
		steps++
		if !killed && steps == killStep {
			// Quiesce the victim's connection, checkpoint it under its
			// lock, then kill the process. Its share of the stream buffers
			// locally (the durable queue a real deployment would hold).
			if err := sites[victim].Barrier(); err != nil {
				fatalf("pre-kill barrier: %v", err)
			}
			sites[victim].Inject(func(dist.Outbox) {
				snap, err = track.SnapshotSite(siteAlgos[victim])
			})
			if err != nil {
				fatalf("snapshot: %v", err)
			}
			sites[victim].Close()
			killed = true
			killedAt = time.Now()
			fmt.Printf("t=%-10d killed site %d (snapshot: %d bytes)\n", steps, victim, len(snap))
		}
		if killed && !tookOver {
			if !deadSeen && verdictStands() {
				deadSeen = true
				verdictAt = time.Now()
				fmt.Printf("t=%-10d detector verdict: site %d dead (heartbeat misses: %d)\n",
					steps, victim, coord.Stats().HeartbeatMisses)
			}
			if deadSeen && !coord.SiteDead(victim) {
				// Stale in-flight beacon rescinded the verdict; wait for
				// the detector to re-declare before splicing.
				deadSeen = false
			}
			if deadSeen && time.Since(verdictAt) >= tkAfter {
				takeover()
			}
		}
		if killed && !tookOver && u.Site == victim {
			backlog = append(backlog, u)
			continue
		}
		sites[u.Site].Update(u)
		if u.T%every == 0 {
			est := coord.Estimate()
			state := "healthy"
			if killed && !tookOver {
				state = "degraded"
			}
			fmt.Printf("t=%-10d f=%-10d f̂=%-10d rel.err=%-8.5f msgs=%-8d [%s]\n",
				u.T, f, est, relErr(f, est), coord.Stats().Total(), state)
		}
	}
	if !killed {
		fatalf("stream ended before -kill step %d (only %d updates)", killStep, steps)
	}
	// A short stream can end mid-outage; the smoke still owes a takeover.
	if !tookOver {
		deadline := time.Now().Add(10 * time.Second)
		for !verdictStands() {
			if time.Now().After(deadline) {
				fatalf("detector never declared site %d dead", victim)
			}
			time.Sleep(opts.hb)
		}
		takeover()
	}

	barrierQuiesce(coord, sites, "final barrier")
	adm.finish() // before the asserts, so a failing smoke still dumps its trace
	stats := coord.Stats()
	var hbSent int64
	for _, s := range sites {
		hbSent += s.Stats().HeartbeatsSent
	}
	est := coord.Estimate()
	fmt.Printf("\nfinal: f=%d f̂=%d rel.err=%.5f | messages=%d heartbeats sent/recv=%d/%d misses=%d takeovers=%d\n",
		f, est, relErr(f, est), stats.Total(),
		hbSent, stats.HeartbeatsRecv, stats.HeartbeatMisses, stats.Takeovers)
	if err := coord.Err(); err != nil {
		fatalf("transport error: %v", err)
	}
	if stats.Takeovers != 1 {
		fatalf("expected exactly one takeover, saw %d", stats.Takeovers)
	}
	if relErr(f, est) > eps+1e-9 {
		fatalf("estimate %d vs exact %d misses ε=%g after takeover", est, f, eps)
	}
	fmt.Println("kill-and-takeover smoke passed")
}

// writeSnapshot checkpoints the coordinator under its own lock and
// persists the blob, returning it for callers that also hold it in memory.
func writeSnapshot(coord *dist.Coordinator, algo dist.CoordAlgo, dir string, step int64) []byte {
	var blob []byte
	var err error
	coord.Inject(func(dist.Outbox) {
		blob, err = track.SnapshotCoord(algo)
	})
	if err != nil {
		fatalf("snapshot: %v", err)
	}
	if _, err := writeSnapshotFile(dir, step, blob); err != nil {
		fatalf("persisting snapshot: %v", err)
	}
	return blob
}

// runTCPKillCoord is the coordinator-side crash smoke: the coordinator
// process dies mid-stream, every site's share of the stream buffers
// locally while the slot is vacant, then a replacement coordinator comes
// up on a new port — warm (snapshot-restored) with -standby, cold
// otherwise — announces its epoch, refolds the sites' books through the
// KindCoordTakeover handshake as they re-dial, and replays the buffered
// backlogs. Exits nonzero unless exactly one coordinator takeover happened
// and the final estimate is back inside ε.
func runTCPKillCoord(st stream.Stream, k int, eps float64, every int64, opts tcpOpts,
	killStep int64, standby bool, snapDir, restoreDir string, tkAfter time.Duration, adm *admin) {
	if opts.hb <= 0 {
		opts.hb = 25 * time.Millisecond // arm the detector on both incarnations
	}
	coordAlgo, siteAlgos := track.NewDeterministic(k, eps)
	coord, err := dist.ListenCoordinator("127.0.0.1:0", k, coordAlgo)
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer func() { coord.Close() }()
	mode := "cold restart"
	if standby {
		mode = "warm standby"
	}
	fmt.Printf("coordinator listening on %s; %d sites connecting; killing the coordinator at step %d (%s)\n",
		coord.Addr(), k, killStep, mode)

	sites := dialSites(coord.Addr(), k, siteAlgos, opts.dialTimeout)
	defer func() { closeSites(sites) }()
	opts.arm(coord, sites)
	coord.SetEventSink(adm.sink())

	// The outage spans one progress interval of buffered streaming, so the
	// degraded window is visible in the report even on short runs.
	outage := every
	var f, steps int64
	var snap []byte
	backlog := make([][]stream.Update, k)
	backlogged := 0
	killed, revived := false, false
	var killedAt time.Time

	// The HTTP handlers race the driver goroutine for `coord` (rebound on
	// revive) and the phase flags, so both sides go through the admin
	// mutex; the driver's own unlocked reads are fine — it is the only
	// writer.
	snapshot := func() (*dist.Coordinator, bool) {
		adm.lock()
		defer adm.unlock()
		return coord, killed && !revived
	}
	adm.serve(&obs.Metrics{
		Stats: func() dist.Stats { c, _ := snapshot(); return c.Stats() },
		Health: func() obs.Health {
			c, down := snapshot()
			if down {
				return obs.Health{Detail: "coordinator down; sites buffering"}
			}
			return tcpHealth(c, k)
		},
	}, func() any {
		c, _ := snapshot()
		return singleStatus{Estimate: c.Estimate(), Stats: c.Stats()}
	})
	defer adm.finish()

	revive := func() {
		replacement, _ := track.NewDeterministic(k, eps)
		if standby {
			if restoreDir != "" {
				// Boot from disk: the newest snapshot that still verifies.
				restored, step, skipped, rerr := restoreLatest(restoreDir, func() any {
					a, _ := track.NewDeterministic(k, eps)
					return a
				})
				for _, s := range skipped {
					fmt.Fprintf(os.Stderr, "varmon: skipping damaged snapshot %s\n", s)
				}
				if rerr != nil {
					fatalf("%v", rerr)
				}
				replacement = restored.(dist.CoordAlgo)
				fmt.Printf("t=%-10d standby restored from the step-%d snapshot in %s\n", steps, step, restoreDir)
			} else if err := track.RestoreCoord(replacement, snap); err != nil {
				fatalf("restore: %v", err)
			}
		}
		next, err := dist.ListenCoordinatorStandby("127.0.0.1:0", k, replacement, 1)
		if err != nil {
			fatalf("standby listen: %v", err)
		}
		next.SetEventSink(adm.sink())
		next.SetFailureDetection(opts.hb, opts.hbMiss)
		for i := range sites {
			s, err := dist.DialNetSiteRetry(next.Addr(), i, siteAlgos[i], opts.dialTimeout)
			if err != nil {
				fatalf("re-dial site %d: %v", i, err)
			}
			s.StartHeartbeats(opts.hb)
			sites[i] = s
		}
		for i, b := range backlog {
			for _, u := range b {
				sites[i].Update(u)
			}
		}
		adm.lock()
		coord, coordAlgo = next, replacement
		revived = true
		adm.unlock()
		fmt.Printf("t=%-10d coordinator takeover (%s): %d sites re-dialed %s, %d buffered updates replayed\n",
			steps, mode, k, next.Addr(), backlogged)
	}

	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		f += u.Delta
		steps++
		if !killed && steps == killStep {
			// Quiesce, checkpoint the coordinator under its lock, then kill
			// it. The sites survive; their connections die with it.
			barrierAll(sites, "pre-kill barrier")
			coord.Inject(func(dist.Outbox) {
				snap, err = track.SnapshotCoord(coordAlgo)
			})
			if err != nil {
				fatalf("snapshot: %v", err)
			}
			if snapDir != "" {
				if _, werr := writeSnapshotFile(snapDir, steps, snap); werr != nil {
					fatalf("persisting snapshot: %v", werr)
				}
			}
			coord.Close()
			closeSites(sites)
			adm.lock()
			killed = true
			adm.unlock()
			killedAt = time.Now()
			fmt.Printf("t=%-10d killed the coordinator (snapshot: %d bytes); buffering all sites' updates\n",
				steps, len(snap))
		}
		if killed && !revived {
			backlog[u.Site] = append(backlog[u.Site], u)
			backlogged++
			if steps >= killStep+outage && time.Since(killedAt) >= tkAfter {
				revive() // replays the backlog, including this update
			}
		} else {
			sites[u.Site].Update(u)
		}
		if u.T%every == 0 {
			if killed && !revived {
				fmt.Printf("t=%-10d f=%-10d f̂=(coordinator down) buffered=%d [degraded]\n", u.T, f, backlogged)
			} else {
				est := coord.Estimate()
				fmt.Printf("t=%-10d f=%-10d f̂=%-10d rel.err=%-8.5f msgs=%d\n",
					u.T, f, est, relErr(f, est), coord.Stats().Total())
			}
		}
	}
	if !killed {
		fatalf("stream ended before -kill-coord step %d (only %d updates)", killStep, steps)
	}
	// A short stream can end mid-outage; the smoke still owes a takeover.
	if !revived {
		revive()
	}

	barrierQuiesce(coord, sites, "final barrier")
	adm.finish() // before the asserts, so a failing smoke still dumps its trace
	stats := coord.Stats()
	est := coord.Estimate()
	fmt.Printf("\nfinal: f=%d f̂=%d rel.err=%.5f | messages=%d epoch drops=%d coordinator takeovers=%d\n",
		f, est, relErr(f, est), stats.Total(), stats.EpochDrops, stats.CoordTakeovers)
	if err := coord.Err(); err != nil {
		fatalf("transport error: %v", err)
	}
	if stats.CoordTakeovers != 1 {
		fatalf("expected exactly one coordinator takeover, saw %d", stats.CoordTakeovers)
	}
	if relErr(f, est) > eps+1e-9 {
		fatalf("estimate %d vs exact %d misses ε=%g after coordinator takeover", est, f, eps)
	}
	fmt.Println("coordinator kill-and-takeover smoke passed")
}

func runAsync(st stream.Stream, k int, eps float64, every int64, model dist.NetModel, seed uint64, adm *admin) {
	coordAlgo, siteAlgos := track.NewDeterministic(k, eps)
	sim := dist.NewAsyncSim(coordAlgo, siteAlgos, model, seed)
	sim.Events = adm.sink()
	serveAsyncAdmin(sim, k, adm, nil)
	defer adm.finish()
	fmt.Printf("async simulator: %d sites, net %s\n", k, model)

	var f, steps int64
	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		f += u.Delta
		steps++
		// The simulator is single-threaded; the admin mutex fences it from
		// concurrent HTTP scrapes (a no-op without -http/-events-out).
		adm.lock()
		sim.Step(u)
		if u.T%every == 0 {
			est := sim.Estimate()
			s := sim.Stats()
			fmt.Printf("t=%-10d f=%-10d f̂=%-10d rel.err=%-8.5f msgs=%-8d stale(avg/max)=%.1f/%d dropped=%d\n",
				u.T, f, est, relErr(f, est), s.Total(),
				s.AvgStaleness(), s.StalenessMax, s.Dropped)
		}
		adm.unlock()
	}
	adm.lock()
	sim.Flush()
	stats := sim.Stats()
	est, now := sim.Estimate(), sim.Now()
	adm.unlock()
	fmt.Printf("\nfinal: f=%d f̂=%d | messages=%d (%.4f/update) wire bytes=%d\n",
		f, est, stats.Total(), perStep(stats.Total(), steps), stats.Bytes)
	fmt.Printf("net: virtual time=%d delivered=%d dropped=%d retransmitted=%d staleness avg=%.1f max=%d\n",
		now, stats.Delivered(), stats.Dropped, stats.Retransmitted,
		stats.AvgStaleness(), stats.StalenessMax)
}

// exactMonitor tracks the ground truth every query is judged against: the
// net count, and per-item net counts for filtered and frequency queries.
type exactMonitor struct {
	f     int64
	items map[uint64]int64
}

func newExactMonitor() *exactMonitor {
	return &exactMonitor{items: make(map[uint64]int64)}
}

func (e *exactMonitor) apply(u stream.Update) {
	e.f += u.Delta
	if n := e.items[u.Item] + u.Delta; n == 0 {
		delete(e.items, u.Item)
	} else {
		e.items[u.Item] = n
	}
}

// want returns the true value a spec's estimate chases: the net count,
// restricted to the filter when one is set (for frequency queries that is
// the filtered F1).
func (e *exactMonitor) want(spec query.Spec) int64 {
	if spec.Filter == nil {
		return e.f
	}
	var w int64
	for item, v := range e.items {
		if spec.Filter.Match(item) {
			w += v
		}
	}
	return w
}

// queryPlan splits specs into the initially attached set and the pending
// mid-stream attaches, preserving CLI order in the final report.
type queryPlan struct {
	specs []query.Spec
	qid   []int // spec index -> query id, -1 until attached
}

func newQueryPlan(specs []query.Spec) (*queryPlan, []query.Spec) {
	p := &queryPlan{specs: specs, qid: make([]int, len(specs))}
	var initial []query.Spec
	for i, s := range specs {
		if s.AttachAt > 0 {
			p.qid[i] = -1
			continue
		}
		p.qid[i] = len(initial)
		initial = append(initial, s)
	}
	return p, initial
}

// due invokes attach for every pending spec whose attach point has passed.
func (p *queryPlan) due(step int64, attach func(spec query.Spec) int) {
	for i, s := range p.specs {
		if p.qid[i] < 0 && step >= s.AttachAt {
			p.qid[i] = attach(s)
			fmt.Printf("t=%-10d attached query %s (qid %d)\n", step, s.Label(p.qid[i]), p.qid[i])
		}
	}
}

// report prints the final per-query table.
func (p *queryPlan) report(eng *query.Coord, ex *exactMonitor, class []dist.Stats) {
	fmt.Printf("\n%-12s %-10s %-7s %-10s %-10s %-9s %-6s %-9s %-11s %s\n",
		"query", "algo", "eps", "estimate", "true", "rel.err", "in-ε", "msgs", "wire bytes", "note")
	allOK := true
	for i, spec := range p.specs {
		qid := p.qid[i]
		if qid < 0 {
			fmt.Printf("%-12s %-10s %-7g never attached (at=%d > n)\n", spec.Label(i), spec.Algo, spec.Eps, spec.AttachAt)
			continue
		}
		est, _ := eng.EstimateQuery(qid)
		want := ex.want(spec)
		re := relErr(want, est)
		ok := re <= spec.Eps+1e-9
		var notes []string
		if spec.Filter != nil {
			notes = append(notes, "filter="+spec.Filter.Name)
		}
		if st, isThresh := eng.ThresholdState(qid); isThresh {
			// The threshold promise is the two-sided decision, judged on
			// the underlying tracked estimate above.
			notes = append(notes, fmt.Sprintf("f %s τ=%d", st, spec.Tau))
		}
		if spec.AttachAt > 0 {
			notes = append(notes, fmt.Sprintf("attached@%d", spec.AttachAt))
		}
		note := strings.Join(notes, " ")
		var msgs, bytes int64
		if qid < len(class) {
			msgs, bytes = class[qid].Total(), class[qid].Bytes
		}
		fmt.Printf("%-12s %-10s %-7g %-10d %-10d %-9.5f %-6v %-9d %-11d %s\n",
			spec.Label(qid), spec.Algo, spec.Eps, est, want, re, ok, msgs, bytes, note)
		if !ok {
			allOK = false
		}
	}
	if !allOK {
		fmt.Println("WARNING: a query finished outside its ε band")
	}
}

func dialSites(addr string, k int, siteAlgos []dist.SiteAlgo, timeout time.Duration) []*dist.NetSite {
	sites := make([]*dist.NetSite, k)
	for i := 0; i < k; i++ {
		s, err := dist.DialNetSiteRetry(addr, i, siteAlgos[i], timeout)
		if err != nil {
			fatalf("dial site %d: %v", i, err)
		}
		sites[i] = s
	}
	return sites
}

func closeSites(sites []*dist.NetSite) {
	for _, s := range sites {
		s.Close()
	}
}

func barrierAll(sites []*dist.NetSite, context string) {
	for round := 0; round < 2; round++ {
		for _, s := range sites {
			if err := s.Barrier(); err != nil {
				fatalf("%s: %v", context, err)
			}
		}
	}
}

// barrierQuiesce flushes barrier rounds until the coordinator's counters
// stop moving — a block collection is a multi-leg cascade, so a fixed
// number of rounds is not enough for a consistent multi-query snapshot.
// The round cap is a safety valve; hitting it means the report below may
// be a mid-cascade snapshot, so say so instead of staying silent.
func barrierQuiesce(coord *dist.Coordinator, sites []*dist.NetSite, context string) {
	prev := dist.Stats{}
	for round := 0; round < 16; round++ {
		for _, s := range sites {
			if err := s.Barrier(); err != nil {
				fatalf("%s: %v", context, err)
			}
		}
		// Heartbeat beacons keep the liveness counters moving forever;
		// quiescence means the protocol counters stopped.
		st := coord.Stats()
		if st.WithoutLiveness() == prev.WithoutLiveness() {
			return
		}
		prev = st
	}
	fmt.Fprintln(os.Stderr, "varmon: network still active after 16 barrier rounds; the report below may be a mid-cascade snapshot")
}

// liveStatus is the /status JSON document in multi-query mode.
type liveStatus struct {
	Queries  []query.Status `json:"queries"`
	Stats    dist.Stats     `json:"stats"`
	PerQuery []dist.Stats   `json:"per_query"`
}

// singleStatus is the /status JSON document for single-query runtimes.
type singleStatus struct {
	Estimate int64      `json:"estimate"`
	Stats    dist.Stats `json:"stats"`
}

func runQueriesTCP(st stream.Stream, k int, specs []query.Spec, every int64, opts tcpOpts, adm *admin) {
	plan, initial := newQueryPlan(specs)
	eng, siteAlgos, err := query.New(k, initial)
	if err != nil {
		fatalf("%v", err)
	}
	coord, err := dist.ListenCoordinator("127.0.0.1:0", k, eng)
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer coord.Close()
	coord.SetClassifier(eng)
	fmt.Printf("multi-query coordinator on %s; %d sites, %d queries (%d pending attach)\n",
		coord.Addr(), k, len(specs), len(specs)-len(initial))

	sites := dialSites(coord.Addr(), k, siteAlgos, opts.dialTimeout)
	defer closeSites(sites)
	opts.arm(coord, sites)

	coord.SetEventSink(adm.sink())
	adm.serve(&obs.Metrics{
		Stats:      coord.Stats,
		Classes:    coord.ClassStats,
		ClassLabel: "query",
		Health:     func() obs.Health { return tcpHealth(coord, k) },
	}, func() any {
		var doc liveStatus
		// eng is owned by the coordinator's lock; Inject serializes the read.
		coord.Inject(func(dist.Outbox) { doc.Queries = eng.Status() })
		doc.Stats = coord.Stats()
		doc.PerQuery = coord.ClassStats()
		return doc
	})
	defer adm.finish()

	ex := newExactMonitor()
	var steps int64
	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		ex.apply(u)
		steps++
		sites[u.Site].Update(u)
		plan.due(steps, func(spec query.Spec) int {
			var qid int
			coord.Inject(func(out dist.Outbox) {
				var aerr error
				if qid, aerr = eng.Attach(spec, out); aerr != nil {
					err = aerr
				}
			})
			if err != nil {
				fatalf("attach: %v", err)
			}
			return qid
		})
		if u.T%every == 0 {
			barrierAll(sites, "barrier")
			var status []query.Status
			coord.Inject(func(dist.Outbox) { status = eng.Status() })
			line := fmt.Sprintf("t=%-10d f=%-8d", u.T, ex.f)
			for _, q := range status {
				line += fmt.Sprintf("  %s=%d", q.Name, q.Estimate)
			}
			fmt.Println(line)
		}
	}

	barrierQuiesce(coord, sites, "final barrier")
	stats := coord.Stats()
	plan.report(eng, ex, coord.ClassStats())
	fmt.Printf("\ntotal: %d messages (%.4f/update), %d wire bytes over one shared runtime\n",
		stats.Total(), perStep(stats.Total(), steps), stats.Bytes)
	if err := coord.Err(); err != nil {
		fatalf("transport error: %v", err)
	}
}

func runQueriesAsync(st stream.Stream, k int, specs []query.Spec, every int64, model dist.NetModel, seed uint64, adm *admin) {
	plan, initial := newQueryPlan(specs)
	eng, siteAlgos, err := query.New(k, initial)
	if err != nil {
		fatalf("%v", err)
	}
	sim := dist.NewAsyncSim(eng, siteAlgos, model, seed)
	sim.SetClassifier(eng)
	sim.Events = adm.sink()
	serveAsyncAdmin(sim, k, adm, eng)
	defer adm.finish()
	fmt.Printf("multi-query async simulator: %d sites, %d queries, net %s\n", k, len(specs), model)

	ex := newExactMonitor()
	var steps int64
	for {
		u, ok := st.Next()
		if !ok {
			break
		}
		checkSite(u, k)
		ex.apply(u)
		steps++
		// Simulator and engine are single-threaded; the admin mutex fences
		// them from concurrent HTTP scrapes (a no-op without -http/-events-out).
		adm.lock()
		sim.Step(u)
		plan.due(steps, func(spec query.Spec) int {
			var qid int
			sim.Inject(func(out dist.Outbox) {
				var aerr error
				if qid, aerr = eng.Attach(spec, out); aerr != nil {
					fatalf("attach: %v", aerr)
				}
			})
			return qid
		})
		if u.T%every == 0 {
			s := sim.Stats()
			line := fmt.Sprintf("t=%-10d f=%-8d", u.T, ex.f)
			for _, q := range eng.Status() {
				line += fmt.Sprintf("  %s=%d", q.Name, q.Estimate)
			}
			line += fmt.Sprintf("  stale(avg/max)=%.1f/%d dropped=%d", s.AvgStaleness(), s.StalenessMax, s.Dropped)
			fmt.Println(line)
		}
		adm.unlock()
	}
	adm.lock()
	sim.Flush()
	stats := sim.Stats()
	classStats := sim.ClassStats()
	now := sim.Now()
	adm.unlock()
	plan.report(eng, ex, classStats)
	fmt.Printf("\ntotal: %d messages (%.4f/update), %d wire bytes | virtual time=%d dropped=%d retransmitted=%d staleness avg=%.1f max=%d\n",
		stats.Total(), perStep(stats.Total(), steps), stats.Bytes,
		now, stats.Dropped, stats.Retransmitted, stats.AvgStaleness(), stats.StalenessMax)
}

func perStep(total, steps int64) float64 {
	if steps == 0 {
		return 0
	}
	return float64(total) / float64(steps)
}

func relErr(f, est int64) float64 {
	diff := f - est
	if diff < 0 {
		diff = -diff
	}
	af := f
	if af < 0 {
		af = -af
	}
	if af == 0 {
		return float64(diff)
	}
	return float64(diff) / float64(af)
}
