package main

// Coordinator snapshot persistence: -snapshot-dir writes the coordinator's
// self-verifying snapshot blob to disk, -restore boots from the newest one
// that still verifies. Files are named coord-<step>.snap with a
// zero-padded step so lexical order is chronological order, and each write
// goes through a temp-file rename, so a crash mid-write leaves a stray
// .tmp, never a truncated .snap posing as the latest checkpoint.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/track"
)

// snapPath names the snapshot file for one step.
func snapPath(dir string, step int64) string {
	return filepath.Join(dir, fmt.Sprintf("coord-%012d.snap", step))
}

// writeSnapshotFile atomically persists one coordinator snapshot blob and
// returns the path it landed at.
func writeSnapshotFile(dir string, step int64, blob []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := snapPath(dir, step)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// snapshotSteps lists the steps with a snapshot file in dir, newest first.
func snapshotSteps(dir string) ([]int64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "coord-*.snap"))
	if err != nil {
		return nil, err
	}
	steps := make([]int64, 0, len(paths))
	for _, p := range paths {
		var s int64
		if _, err := fmt.Sscanf(filepath.Base(p), "coord-%d.snap", &s); err == nil {
			steps = append(steps, s)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	return steps, nil
}

// restoreLatest boots a coordinator from the newest snapshot in dir whose
// integrity check passes. Each candidate is restored into a fresh
// algorithm from the factory, so a blob that fails mid-decode can never
// leave the returned coordinator half-mutated. Damaged files are skipped
// (and reported) rather than restored: an older intact checkpoint beats a
// newer corrupt one.
func restoreLatest(dir string, fresh func() any) (algo any, step int64, skipped []string, err error) {
	steps, err := snapshotSteps(dir)
	if err != nil {
		return nil, 0, nil, err
	}
	if len(steps) == 0 {
		return nil, 0, nil, fmt.Errorf("no coordinator snapshots in %s", dir)
	}
	for _, s := range steps {
		path := snapPath(dir, s)
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, rerr))
			continue
		}
		candidate := fresh()
		if rerr := track.RestoreCoord(candidate, blob); rerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", path, rerr))
			continue
		}
		return candidate, s, skipped, nil
	}
	return nil, 0, skipped, fmt.Errorf("no restorable coordinator snapshot in %s (%d damaged)", dir, len(skipped))
}
