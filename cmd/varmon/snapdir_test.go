package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/stream"
	"repro/internal/track"
)

// drivenCoord runs a small deterministic deployment for n steps and
// returns its coordinator algorithm, so tests get snapshots with
// non-trivial, distinguishable state.
func drivenCoord(t *testing.T, k int, n int64) dist.CoordAlgo {
	t.Helper()
	coordAlgo, siteAlgos := track.NewDeterministic(k, 0.1)
	sim := dist.NewSim(coordAlgo, siteAlgos)
	sim.Run(stream.NewAssign(stream.RandomWalk(n, 7), stream.NewRoundRobin(k)))
	return coordAlgo
}

func mustSnapshot(t *testing.T, algo dist.CoordAlgo) []byte {
	t.Helper()
	blob, err := track.SnapshotCoord(algo)
	if err != nil {
		t.Fatalf("SnapshotCoord: %v", err)
	}
	return blob
}

// TestSnapshotDirPicksNewestIntact pins the -restore contract: the newest
// snapshot wins when it verifies, and damaged files — a bit flip breaking
// the integrity hash, a truncation — are skipped in favor of an older
// intact checkpoint, never silently restored.
func TestSnapshotDirPicksNewestIntact(t *testing.T) {
	const k = 4
	dir := t.TempDir()

	older := mustSnapshot(t, drivenCoord(t, k, 500))
	newer := mustSnapshot(t, drivenCoord(t, k, 2_000))
	wantEst := drivenCoord(t, k, 2_000).Estimate()

	if _, err := writeSnapshotFile(dir, 500, older); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := writeSnapshotFile(dir, 2_000, newer); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Two newer-still damaged snapshots: one corrupted by a payload bit
	// flip (hash mismatch), one truncated mid-blob.
	flipped := append([]byte(nil), newer...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := writeSnapshotFile(dir, 3_000, flipped); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := writeSnapshotFile(dir, 4_000, newer[:len(newer)/2]); err != nil {
		t.Fatalf("write: %v", err)
	}

	fresh := func() any {
		a, _ := track.NewDeterministic(k, 0.1)
		return a
	}
	algo, step, skipped, err := restoreLatest(dir, fresh)
	if err != nil {
		t.Fatalf("restoreLatest: %v", err)
	}
	if step != 2_000 {
		t.Fatalf("restored step %d, want 2000 (the newest intact snapshot)", step)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d files, want 2: %v", len(skipped), skipped)
	}
	if got := algo.(dist.CoordAlgo).Estimate(); got != wantEst {
		t.Fatalf("restored estimate %d, want %d", got, wantEst)
	}
}

// TestSnapshotDirAllDamaged: when every snapshot is damaged, -restore must
// refuse to boot rather than restore garbage.
func TestSnapshotDirAllDamaged(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	blob := mustSnapshot(t, drivenCoord(t, k, 800))
	blob[len(blob)/3] ^= 0x01
	if _, err := writeSnapshotFile(dir, 100, blob); err != nil {
		t.Fatalf("write: %v", err)
	}
	fresh := func() any {
		a, _ := track.NewDeterministic(k, 0.1)
		return a
	}
	_, _, skipped, err := restoreLatest(dir, fresh)
	if err == nil {
		t.Fatal("restoreLatest accepted a directory holding only a corrupt snapshot")
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "hash mismatch") {
		t.Fatalf("skipped = %v, want one hash-mismatch rejection", skipped)
	}
}

// TestSnapshotDirEmpty: an empty (or missing) directory is a boot error,
// not a silent cold start.
func TestSnapshotDirEmpty(t *testing.T) {
	fresh := func() any {
		a, _ := track.NewDeterministic(2, 0.1)
		return a
	}
	if _, _, _, err := restoreLatest(t.TempDir(), fresh); err == nil {
		t.Fatal("restoreLatest accepted an empty directory")
	}
}

// TestWriteSnapshotFileAtomic: the published file appears under its final
// name only, with no .tmp residue on the success path.
func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path, err := writeSnapshotFile(dir, 42, []byte("blob"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "blob" {
		t.Fatalf("read back %q, %v", got, err)
	}
}
