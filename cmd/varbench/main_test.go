package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/expt"
	"repro/internal/obs"
)

// TestWriteMetricsSnapshot pins the -metrics-out contract: experiments
// that recorded transport stats appear as {experiment="ID"} samples,
// experiments that did not are absent, and each labeled family sums to
// its aggregate sample (StalenessMax as a maximum).
func TestWriteMetricsSnapshot(t *testing.T) {
	withStats := func(id string, s dist.Stats) expt.Timed {
		tb := expt.NewTable(id, "test")
		tb.AddStats(s)
		return expt.Timed{Experiment: expt.Experiment{ID: id}, Table: tb}
	}
	results := []expt.Timed{
		withStats("E25", dist.Stats{SiteToCoord: 100, CoordToSite: 10, Bytes: 2200,
			StalenessSum: 40, StalenessMax: 9, Dropped: 3}),
		{Experiment: expt.Experiment{ID: "E01"}, Table: expt.NewTable("E01", "no stats")},
		withStats("E32", dist.Stats{SiteToCoord: 50, CoordToSite: 5, Bytes: 1100,
			StalenessSum: 8, StalenessMax: 4, Takeovers: 2}),
	}
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := writeMetricsSnapshot(path, results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatalf("snapshot is not parseable exposition: %v", err)
	}
	agg := map[string]float64{}
	sum := map[string]float64{}
	max := map[string]float64{}
	labels := map[string]bool{}
	for _, s := range samples {
		if id := s.Label("experiment"); id != "" {
			labels[id] = true
			sum[s.Name] += s.Value
			if s.Value > max[s.Name] {
				max[s.Name] = s.Value
			}
		} else {
			agg[s.Name] = s.Value
		}
	}
	if !labels["E25"] || !labels["E32"] {
		t.Fatalf("missing experiment labels: %v", labels)
	}
	if labels["E01"] {
		t.Fatal("E01 recorded no stats but appears in the snapshot")
	}
	for name, want := range agg {
		family := "varmon_experiment_" + name[len("varmon_"):]
		got, fold := sum[family], "sum"
		if name == "varmon_staleness_max_ticks" {
			got, fold = max[family], "max"
		}
		if got != want {
			t.Errorf("per-experiment %s of %s = %g, aggregate = %g", fold, family, got, want)
		}
	}
	if got := agg["varmon_messages_site_to_coord_total"]; got != 150 {
		t.Fatalf("aggregate site-to-coord = %g, want 150", got)
	}
	if got := agg["varmon_takeovers_total"]; got != 2 {
		t.Fatalf("aggregate takeovers = %g, want 2", got)
	}
}

// TestWriteMetricsSnapshotEmpty keeps the zero-experiment case valid: a
// run whose selection recorded no stats still writes a parseable
// exposition of all-zero aggregates.
func TestWriteMetricsSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	err := writeMetricsSnapshot(path, []expt.Timed{
		{Experiment: expt.Experiment{ID: "E01"}, Table: expt.NewTable("E01", "no stats")},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Label("experiment") != "" {
			t.Fatalf("unexpected labeled sample %+v", s)
		}
		if s.Value != 0 {
			t.Fatalf("aggregate %s = %g in an empty snapshot", s.Name, s.Value)
		}
	}
}
