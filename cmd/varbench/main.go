// Command varbench runs the reproduction experiments (E01–E24 in DESIGN.md)
// and prints paper-vs-measured tables.
//
// Usage:
//
//	varbench [-exp E01,E06] [-quick] [-seed 42] [-csv]
//
// With no -exp flag every experiment runs in index order. -quick shrinks
// stream lengths and trial counts by roughly 10× for a fast smoke run;
// EXPERIMENTS.md records a full (non-quick) run. -csv emits comma-separated
// values instead of aligned tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E01,E06), or 'all'")
		quick    = flag.Bool("quick", false, "run reduced-scale experiments")
		seed     = flag.Uint64("seed", 42, "root RNG seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range expt.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}

	cfg := expt.Config{Quick: *quick, Seed: *seed}
	var selected []expt.Experiment
	if *expFlag == "all" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "varbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tbl := e.Run(cfg)
		if *csv {
			tbl.CSV(os.Stdout)
			fmt.Println()
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
