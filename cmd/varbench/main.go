// Command varbench runs the reproduction experiments (E01–E27 in DESIGN.md)
// and prints paper-vs-measured tables.
//
// Usage:
//
//	varbench [-exp E01,E06] [-quick] [-seed 42] [-csv] [-p N] [-json] [-compare OLD.json] [-net latency=8,drop=0.01]
//
// With no -exp flag every experiment runs in index order. -quick shrinks
// stream lengths and trial counts by roughly 10× for a fast smoke run;
// EXPERIMENTS.md records a full (non-quick) run. -csv emits comma-separated
// values instead of aligned tables.
//
// -p N runs the suite on N worker goroutines (default GOMAXPROCS); every
// experiment is a pure function of (-seed, -quick), so the tables are
// byte-identical to the sequential run for any N. -json suppresses the
// tables and instead emits a machine-readable per-experiment wall-clock
// report on stdout — the format committed as BENCH_baseline.json and
// described in EXPERIMENTS.md.
//
// -compare OLD.json loads a previous -json snapshot and, after the run,
// prints per-experiment wall-clock deltas and the total speedup, so a perf
// PR documents itself:
//
//	varbench -json -p 1 > BENCH_pr3.json
//	varbench -p 1 -compare BENCH_baseline.json
//
// The comparison goes to stderr in -json mode (stdout stays machine
// readable) and to stdout otherwise.
//
// -net KEY=VAL,... supplies an extra network model (dist.ParseNetModel
// syntax) that the asynchronous-runtime experiments E25–E27 fold into
// their sweeps alongside the built-in configurations.
//
// -count N repeats the whole suite N times and reports the per-experiment
// minimum wall clock (the standard noise filter for wall-clock benchmarks
// on a shared box). The -json report records N and each experiment's
// (max−min)/min spread; -compare consumes the minima, so a committed
// BENCH file from -count 5 is trustworthy at the few-percent level.
//
// -cpuprofile F / -memprofile F write pprof profiles of the measured suite
// (all -count repetitions) for `go tool pprof` — see the profiling
// workflow note in EXPERIMENTS.md.
//
// -metrics-out F writes the final per-experiment transport metrics as a
// Prometheus text exposition (the same format varmon's /metrics serves):
// one sample per counter family per experiment, labeled
// {experiment="E25"}, plus aggregate families that the labeled samples
// sum to exactly. Experiments opt in via Table.AddStats — the async,
// engine, and fault experiments (E25–E32) do; the Sim-only sweeps keep
// their message counts in their table columns. Pairs with -json to drop a
// metrics snapshot next to the timing report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/expt"
	"repro/internal/obs"
)

// benchEntry is one experiment's timing in the -json report. With
// -count N > 1, WallNS/Seconds are the minimum over the N runs and
// Spread is (max−min)/min — how noisy the measurement was.
type benchEntry struct {
	ID      string  `json:"id"`
	Name    string  `json:"name"`
	WallNS  int64   `json:"wall_ns"`
	Seconds float64 `json:"seconds"`
	Spread  float64 `json:"spread,omitempty"`
	Rows    int     `json:"rows"`
}

// benchReport is the -json document. TotalWallNS is the end-to-end suite
// wall clock (not the sum of per-experiment times, which exceeds it when
// -p > 1). With -count N > 1 on a sequential run (-p 1) it is the sum of
// the per-experiment minima — the wall clock of a noise-free sequential
// pass, consistent with the entries — and otherwise the fastest
// whole-suite repetition.
type benchReport struct {
	Suite       string       `json:"suite"`
	GoVersion   string       `json:"go"`
	Quick       bool         `json:"quick"`
	Seed        uint64       `json:"seed"`
	Workers     int          `json:"workers"`
	Count       int          `json:"count,omitempty"`
	TotalWallNS int64        `json:"total_wall_ns"`
	TotalSec    float64      `json:"total_seconds"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E01,E06), or 'all'")
		quick    = flag.Bool("quick", false, "run reduced-scale experiments")
		seed     = flag.Uint64("seed", 42, "root RNG seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable timing report instead of tables")
		workers  = flag.Int("p", runtime.GOMAXPROCS(0), "worker goroutines for the experiment suite (1 = sequential)")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
		compare  = flag.String("compare", "", "path to a previous -json report; print per-experiment wall-clock deltas after the run")
		netFlag  = flag.String("net", "", "extra network model for the async experiments E25-E27, e.g. latency=8,jitter=2,drop=0.01,retrans=3")
		count    = flag.Int("count", 1, "repeat the suite N times; timings report the per-experiment minimum")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the measured suite to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file after the run")
		metrics  = flag.String("metrics-out", "", "write the final per-experiment transport metrics as a Prometheus text exposition to this file")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range expt.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}

	// Normalize once so the experiment pool, the trial pool, and the
	// -json report all see the same effective worker count.
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := expt.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	if *netFlag != "" {
		model, err := dist.ParseNetModel(*netFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "varbench: %v\n", err)
			os.Exit(2)
		}
		cfg.Net = &model
	}
	var selected []expt.Experiment
	if *expFlag == "all" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "varbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// Tables stream to stdout in index order as experiments finish; in
	// -json mode nothing prints until the timing report at the end.
	emit := func(r expt.Timed) {
		if *jsonOut {
			return
		}
		if *csv {
			r.Table.CSV(os.Stdout)
			fmt.Println()
		} else {
			r.Table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	}

	var old *benchReport
	if *compare != "" {
		var err error
		if old, err = loadReport(*compare); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -compare: %v\n", err)
			os.Exit(2)
		}
	}

	if *count < 1 {
		*count = 1
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
	}

	// Run 1 streams the tables; repetitions 2..count only re-measure.
	// Per-experiment minima filter scheduler noise out of the committed
	// timings, and the spread records how much noise there was to filter.
	start := time.Now()
	results := expt.RunExperiments(selected, cfg, *workers, emit)
	total := time.Since(start)
	minNS := make([]int64, len(results))
	maxNS := make([]int64, len(results))
	for i, r := range results {
		minNS[i] = r.Elapsed.Nanoseconds()
		maxNS[i] = minNS[i]
	}
	for run := 2; run <= *count; run++ {
		rStart := time.Now()
		rerun := expt.RunExperiments(selected, cfg, *workers, nil)
		rTotal := time.Since(rStart)
		if rTotal < total {
			total = rTotal
		}
		for i, r := range rerun {
			ns := r.Elapsed.Nanoseconds()
			if ns < minNS[i] {
				minNS[i] = ns
			}
			if ns > maxNS[i] {
				maxNS[i] = ns
			}
		}
		fmt.Fprintf(os.Stderr, "[run %d/%d in %v]\n", run, *count, rTotal.Round(time.Millisecond))
	}
	for i := range results {
		results[i].Elapsed = time.Duration(minNS[i])
	}
	// A sequential suite's total is the sum of its parts, so with -count
	// the noise-filtered total is the sum of the per-experiment minima;
	// keeping the fastest-repetition wall clock instead would reintroduce
	// exactly the scheduler noise the per-entry minima filtered out. With
	// -p > 1 the sum is not a wall clock, so the fastest repetition stands.
	if *count > 1 && *workers == 1 {
		var sum int64
		for _, ns := range minNS {
			sum += ns
		}
		total = time.Duration(sum)
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -memprofile: %v\n", err)
			os.Exit(2)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}

	if *metrics != "" {
		if err := writeMetricsSnapshot(*metrics, results); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: -metrics-out: %v\n", err)
			os.Exit(2)
		}
	}

	if old != nil {
		// stdout carries the tables (or the JSON report); route the
		// comparison to stderr in -json mode to keep stdout parseable.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		printComparison(out, old, results, total, *quick, *seed)
	}

	if *jsonOut {
		report := benchReport{
			Suite:       "varbench",
			GoVersion:   runtime.Version(),
			Quick:       *quick,
			Seed:        *seed,
			Workers:     *workers,
			Count:       *count,
			TotalWallNS: total.Nanoseconds(),
			TotalSec:    total.Seconds(),
			Experiments: make([]benchEntry, len(results)),
		}
		for i, r := range results {
			e := benchEntry{
				ID:      r.Experiment.ID,
				Name:    r.Experiment.Name,
				WallNS:  r.Elapsed.Nanoseconds(),
				Seconds: r.Elapsed.Seconds(),
				Rows:    len(r.Table.Rows),
			}
			if *count > 1 && minNS[i] > 0 {
				e.Spread = float64(maxNS[i]-minNS[i]) / float64(minNS[i])
			}
			report.Experiments[i] = e
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "[suite: %d experiments in %v with %d workers]\n",
		len(results), total.Round(time.Millisecond), *workers)
}

// loadReport reads a previous -json snapshot.
func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// printComparison renders per-experiment wall-clock deltas between a
// previous report and this run, plus the end-to-end speedup. Experiments
// present on only one side are listed without a ratio.
func printComparison(w *os.File, old *benchReport, results []expt.Timed, total time.Duration, quick bool, seed uint64) {
	if old.Quick != quick || old.Seed != seed {
		fmt.Fprintf(w, "warning: -compare baseline ran with quick=%v seed=%d, this run quick=%v seed=%d — deltas are not apples-to-apples\n",
			old.Quick, old.Seed, quick, seed)
	}
	oldBy := make(map[string]benchEntry, len(old.Experiments))
	for _, e := range old.Experiments {
		oldBy[e.ID] = e
	}
	fmt.Fprintf(w, "== wall-clock vs %s ==\n", old.Suite)
	fmt.Fprintf(w, "  %-5s %10s %10s %9s\n", "exp", "old(s)", "new(s)", "speedup")
	for _, r := range results {
		o, ok := oldBy[r.Experiment.ID]
		if !ok {
			fmt.Fprintf(w, "  %-5s %10s %10.3f %9s\n", r.Experiment.ID, "-", r.Elapsed.Seconds(), "new")
			continue
		}
		fmt.Fprintf(w, "  %-5s %10.3f %10.3f %8.2f×\n",
			r.Experiment.ID, o.Seconds, r.Elapsed.Seconds(), o.Seconds/r.Elapsed.Seconds())
		delete(oldBy, r.Experiment.ID)
	}
	gone := make([]string, 0, len(oldBy))
	for id := range oldBy {
		gone = append(gone, id)
	}
	sort.Strings(gone)
	for _, id := range gone {
		fmt.Fprintf(w, "  %-5s %10.3f %10s %9s\n", id, oldBy[id].Seconds, "-", "gone")
	}
	if len(results) == len(old.Experiments) && len(oldBy) == 0 {
		fmt.Fprintf(w, "  %-5s %10.3f %10.3f %8.2f×\n",
			"total", old.TotalSec, total.Seconds(), old.TotalSec/total.Seconds())
	} else {
		fmt.Fprintf(w, "  total incomparable: experiment sets differ (this run %d, baseline %d)\n",
			len(results), len(old.Experiments))
	}
}

// writeMetricsSnapshot renders the per-experiment transport stats as one
// Prometheus text exposition: every experiment that recorded stats
// (Table.AddStats) becomes a class labeled with its ID, and the aggregate
// families are the merge across all of them — so the per-experiment
// samples of each counter family sum exactly to the aggregate sample, the
// same invariant the runtimes' per-query tables keep.
func writeMetricsSnapshot(path string, results []expt.Timed) error {
	var ids []string
	var classes []dist.Stats
	var agg dist.Stats
	for _, r := range results {
		if r.Table == nil || r.Table.Stats == nil {
			continue
		}
		ids = append(ids, r.Experiment.ID)
		classes = append(classes, *r.Table.Stats)
		agg.Merge(*r.Table.Stats)
	}
	m := &obs.Metrics{
		Stats:      func() dist.Stats { return agg },
		ClassLabel: "experiment",
	}
	if len(classes) > 0 {
		m.Classes = func() []dist.Stats { return classes }
		m.ClassValue = func(i int) string {
			if i < len(ids) {
				return ids[i]
			}
			return fmt.Sprintf("%d", i)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
