// Command varbench runs the reproduction experiments (E01–E24 in DESIGN.md)
// and prints paper-vs-measured tables.
//
// Usage:
//
//	varbench [-exp E01,E06] [-quick] [-seed 42] [-csv] [-p N] [-json]
//
// With no -exp flag every experiment runs in index order. -quick shrinks
// stream lengths and trial counts by roughly 10× for a fast smoke run;
// EXPERIMENTS.md records a full (non-quick) run. -csv emits comma-separated
// values instead of aligned tables.
//
// -p N runs the suite on N worker goroutines (default GOMAXPROCS); every
// experiment is a pure function of (-seed, -quick), so the tables are
// byte-identical to the sequential run for any N. -json suppresses the
// tables and instead emits a machine-readable per-experiment wall-clock
// report on stdout — the format committed as BENCH_baseline.json and
// described in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/expt"
)

// benchEntry is one experiment's timing in the -json report.
type benchEntry struct {
	ID      string  `json:"id"`
	Name    string  `json:"name"`
	WallNS  int64   `json:"wall_ns"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
}

// benchReport is the -json document. TotalWallNS is the end-to-end suite
// wall clock (not the sum of per-experiment times, which exceeds it when
// -p > 1).
type benchReport struct {
	Suite       string       `json:"suite"`
	GoVersion   string       `json:"go"`
	Quick       bool         `json:"quick"`
	Seed        uint64       `json:"seed"`
	Workers     int          `json:"workers"`
	TotalWallNS int64        `json:"total_wall_ns"`
	TotalSec    float64      `json:"total_seconds"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E01,E06), or 'all'")
		quick    = flag.Bool("quick", false, "run reduced-scale experiments")
		seed     = flag.Uint64("seed", 42, "root RNG seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable timing report instead of tables")
		workers  = flag.Int("p", runtime.GOMAXPROCS(0), "worker goroutines for the experiment suite (1 = sequential)")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range expt.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}

	// Normalize once so the experiment pool, the trial pool, and the
	// -json report all see the same effective worker count.
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := expt.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	var selected []expt.Experiment
	if *expFlag == "all" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "varbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// Tables stream to stdout in index order as experiments finish; in
	// -json mode nothing prints until the timing report at the end.
	emit := func(r expt.Timed) {
		if *jsonOut {
			return
		}
		if *csv {
			r.Table.CSV(os.Stdout)
			fmt.Println()
		} else {
			r.Table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	}

	start := time.Now()
	results := expt.RunExperiments(selected, cfg, *workers, emit)
	total := time.Since(start)

	if *jsonOut {
		report := benchReport{
			Suite:       "varbench",
			GoVersion:   runtime.Version(),
			Quick:       *quick,
			Seed:        *seed,
			Workers:     *workers,
			TotalWallNS: total.Nanoseconds(),
			TotalSec:    total.Seconds(),
			Experiments: make([]benchEntry, len(results)),
		}
		for i, r := range results {
			report.Experiments[i] = benchEntry{
				ID:      r.Experiment.ID,
				Name:    r.Experiment.Name,
				WallNS:  r.Elapsed.Nanoseconds(),
				Seconds: r.Elapsed.Seconds(),
				Rows:    len(r.Table.Rows),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "varbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "[suite: %d experiments in %v with %d workers]\n",
		len(results), total.Round(time.Millisecond), *workers)
}
